package program_test

import (
	"math"
	"testing"

	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

// strongGraph builds a graph where every vertex has at least one out-edge
// and one in-edge (a cycle plus random chords), so PR-delta's fixpoint
// matches the power-iteration limit without dangling-mass differences.
func strongGraph(n, chords int, seed int64) *graph.CSR {
	edges := make([]graph.Edge, 0, n+chords)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), Weight: 1})
	}
	s := seed
	next := func(mod int) int {
		s = s*6364136223846793005 + 1442695040888963407
		v := int((s >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for i := 0; i < chords; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.VertexID(next(n)), Dst: graph.VertexID(next(n)), Weight: 1})
	}
	return graph.FromEdges("strong", n, edges)
}

func TestPRDeltaConvergesToPageRank(t *testing.T) {
	g := strongGraph(300, 1200, 7)
	props, stats := program.Exec(program.NewPRDelta(0.85, 1e-7), g)
	// Power iteration run long enough to converge.
	want := ref.PageRank(g, 0.85, 120)
	for v := range want {
		got := program.PRDeltaRank(props[v])
		if math.Abs(got-want[v]) > 5e-4+1e-2*want[v] {
			t.Fatalf("vertex %d: pr-delta %v, power iteration %v", v, got, want[v])
		}
	}
	if stats.EdgesTraversed == 0 || stats.MessagesCoalesced == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPRDeltaToleranceBoundsWork(t *testing.T) {
	// A looser tolerance must strictly reduce traversal work.
	g := strongGraph(300, 1200, 9)
	_, tight := program.Exec(program.NewPRDelta(0.85, 1e-8), g)
	_, loose := program.Exec(program.NewPRDelta(0.85, 1e-3), g)
	if loose.EdgesTraversed >= tight.EdgesTraversed {
		t.Fatalf("loose tol traversed %d edges, tight %d — tolerance not bounding work",
			loose.EdgesTraversed, tight.EdgesTraversed)
	}
}

func TestPRDeltaDefaults(t *testing.T) {
	p := program.NewPRDelta(-3, -1)
	if p.Name() != "pr-delta" || p.Mode() != program.Async {
		t.Fatalf("identity wrong: %s %v", p.Name(), p.Mode())
	}
	if _, ok := p.(program.SelfUpdating); !ok {
		t.Fatal("pr-delta must be SelfUpdating")
	}
	// Zero out-degree and zero residual suppress messages.
	if _, ok := p.Propagate(0, 1, 0); ok {
		t.Fatal("outdeg 0 propagated")
	}
	if _, ok := p.Propagate(0, 1, 5); ok {
		t.Fatal("zero residual propagated")
	}
}
