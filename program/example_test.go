package program_test

import (
	"fmt"

	"nova/graph"
	"nova/program"
)

// ExampleExec runs SSSP functionally — the reference semantics every
// simulated engine must match.
func ExampleExec() {
	g := graph.FromEdges("path", 3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 4},
		{Src: 1, Dst: 2, Weight: 3},
	})
	props, stats := program.Exec(program.NewSSSP(0), g)
	fmt.Println("distances:", props[0], props[1], props[2])
	fmt.Println("edges traversed:", stats.EdgesTraversed)
	// Output:
	// distances: 0 4 7
	// edges traversed: 2
}

// ExampleSynchronous converts asynchronous BFS into its level-synchronous
// BSP form.
func ExampleSynchronous() {
	g := graph.FromEdges("path", 3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	})
	p := program.Synchronous(program.NewBFS(0))
	props, stats := program.Exec(p, g)
	fmt.Println(p.Name(), "distances:", props[0], props[1], props[2], "epochs:", stats.Epochs)
	// Output:
	// bfs-bsp distances: 0 1 2 epochs: 3
}
