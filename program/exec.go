package program

import (
	"fmt"

	"nova/graph"
)

// Exec is the functional reference executor: it runs a Program to
// completion with no timing model, defining the canonical semantics every
// simulated engine must match. It also returns the same statistics the
// engines report, which makes it useful for unit-testing workloads and for
// sanity-checking engine message counts.
//
// The async schedule is a FIFO worklist with pending-vertex coalescing;
// for the monotone reduce functions used by the paper's workloads the
// fixed point is schedule-independent.
func Exec(p Program, g *graph.CSR) ([]Prop, RunStats) {
	switch p.Mode() {
	case Async:
		return execAsync(p, g)
	case BSP:
		bp, ok := p.(BSPProgram)
		if !ok {
			panic(fmt.Sprintf("program: %s declares BSP mode but is not a BSPProgram", p.Name()))
		}
		return execBSP(bp, g)
	default:
		panic(fmt.Sprintf("program: unknown mode %d", p.Mode()))
	}
}

func initProps(p Program, g *graph.CSR) []Prop {
	props := make([]Prop, g.NumVertices())
	for v := range props {
		props[v] = p.InitProp(graph.VertexID(v), g)
	}
	return props
}

func execAsync(p Program, g *graph.CSR) ([]Prop, RunStats) {
	props := initProps(p, g)
	var stats RunStats
	su, _ := p.(SelfUpdating)
	n := g.NumVertices()
	pending := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	push := func(v graph.VertexID) {
		if !pending[v] {
			pending[v] = true
			queue = append(queue, v)
		}
	}
	for _, v := range p.InitActive(g) {
		push(v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		pending[v] = false
		prop := props[v]
		if su != nil {
			props[v], prop = su.OnPropagate(v, props[v])
		}
		lo, hi := g.RowPtr[v], g.RowPtr[v+1]
		outDeg := hi - lo
		for i := lo; i < hi; i++ {
			delta, ok := p.Propagate(prop, g.Weight[i], outDeg)
			if !ok {
				continue
			}
			stats.EdgesTraversed++
			stats.MessagesSent++
			dst := g.Dst[i]
			next := p.Reduce(dst, props[dst], delta)
			if next != props[dst] {
				props[dst] = next
				if pending[dst] {
					stats.MessagesCoalesced++
				}
				push(dst)
			}
		}
	}
	return props, stats
}

func execBSP(p BSPProgram, g *graph.CSR) ([]Prop, RunStats) {
	props := initProps(p, g)
	var stats RunStats
	n := g.NumVertices()
	sched, _ := p.(ScheduledProgram)
	prep, _ := p.(PropPreparer)

	inSet := make([]bool, n)
	active := make([]graph.VertexID, 0, n)
	addActive := func(v graph.VertexID) {
		if !inSet[v] {
			inSet[v] = true
			active = append(active, v)
		}
	}
	for _, v := range p.InitActive(g) {
		addActive(v)
	}
	if sched != nil {
		for _, v := range sched.EpochActive(0, g) {
			addActive(v)
		}
	}

	accum := make([]Prop, n)
	touched := make([]bool, n)
	var touchedList []graph.VertexID

	for epoch := 0; len(active) > 0; epoch++ {
		if m := p.MaxEpochs(); m > 0 && epoch >= m {
			break
		}
		stats.Epochs++
		// Message-generation half: every active vertex propagates.
		for _, v := range active {
			prop := props[v]
			if prep != nil {
				prop = prep.PrepareProp(v, prop)
			}
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			outDeg := hi - lo
			for i := lo; i < hi; i++ {
				delta, ok := p.Propagate(prop, g.Weight[i], outDeg)
				if !ok {
					continue
				}
				stats.EdgesTraversed++
				stats.MessagesSent++
				dst := g.Dst[i]
				if !touched[dst] {
					touched[dst] = true
					accum[dst] = p.AccumInit()
					touchedList = append(touchedList, dst)
				} else {
					stats.MessagesCoalesced++
				}
				accum[dst] = p.Reduce(dst, accum[dst], delta)
			}
			inSet[v] = false
		}
		active = active[:0]
		// Barrier: apply accumulated updates, collect next active set.
		for _, v := range touchedList {
			newProp, activate := p.Apply(v, props[v], accum[v], g)
			props[v] = newProp
			touched[v] = false
			if activate {
				addActive(v)
			}
		}
		touchedList = touchedList[:0]
		if sched != nil {
			for _, v := range sched.EpochActive(epoch+1, g) {
				addActive(v)
			}
		}
	}
	return props, stats
}
