package program

import (
	"math"

	"nova/graph"
)

// The five workloads of the paper's evaluation (Section V): BFS, CC and
// SSSP in asynchronous mode; PR and BC in bulk-synchronous mode.

// bfs computes hop distances from a root.
type bfs struct{ root graph.VertexID }

// NewBFS returns asynchronous breadth-first search from root (distances in
// hops, Algorithm 1 with weight ≡ 1).
func NewBFS(root graph.VertexID) Program { return bfs{root} }

func (bfs) Name() string { return "bfs" }
func (bfs) Mode() Mode   { return Async }

func (b bfs) InitProp(v graph.VertexID, g *graph.CSR) Prop {
	if v == b.root {
		return 0
	}
	return Inf
}

func (b bfs) InitActive(g *graph.CSR) []graph.VertexID { return []graph.VertexID{b.root} }

func (bfs) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	if delta < cur {
		return delta
	}
	return cur
}

// MergeDelta implements DeltaMerger: min-combining in-flight deltas is
// exact for the monotone min reduction.
func (bfs) MergeDelta(a, b Prop) Prop {
	if b < a {
		return b
	}
	return a
}

func (bfs) Propagate(prop Prop, _ uint32, _ int64) (Prop, bool) {
	return prop + 1, true
}

// sssp computes shortest-path distances from a root using edge weights
// (the decoupled message-driven SSSP of Algorithm 1).
type sssp struct{ root graph.VertexID }

// NewSSSP returns asynchronous single-source shortest paths from root.
func NewSSSP(root graph.VertexID) Program { return sssp{root} }

func (sssp) Name() string { return "sssp" }
func (sssp) Mode() Mode   { return Async }

func (s sssp) InitProp(v graph.VertexID, g *graph.CSR) Prop {
	if v == s.root {
		return 0
	}
	return Inf
}

func (s sssp) InitActive(g *graph.CSR) []graph.VertexID { return []graph.VertexID{s.root} }

func (sssp) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	if delta < cur {
		return delta
	}
	return cur
}

// MergeDelta implements DeltaMerger (exact: min is associative).
func (sssp) MergeDelta(a, b Prop) Prop {
	if b < a {
		return b
	}
	return a
}

func (sssp) Propagate(prop Prop, w uint32, _ int64) (Prop, bool) {
	return prop + Prop(w), true
}

// cc computes connected components by label propagation (min label wins).
// Run it on a symmetrized graph.
type cc struct{}

// NewCC returns asynchronous connected components via min-label
// propagation. The input graph must be symmetric.
func NewCC() Program { return cc{} }

func (cc) Name() string { return "cc" }
func (cc) Mode() Mode   { return Async }

func (cc) InitProp(v graph.VertexID, g *graph.CSR) Prop { return Prop(v) }

func (cc) InitActive(g *graph.CSR) []graph.VertexID { return allVertices(g) }

func (cc) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	if delta < cur {
		return delta
	}
	return cur
}

// MergeDelta implements DeltaMerger (exact: min is associative).
func (cc) MergeDelta(a, b Prop) Prop {
	if b < a {
		return b
	}
	return a
}

func (cc) Propagate(prop Prop, _ uint32, _ int64) (Prop, bool) {
	return prop, true
}

// pr is PageRank in BSP mode. The paper runs PR bulk-synchronously because
// PR-delta's performance is too sensitive to traversal order (Section V).
type pr struct {
	damping float64
	epochs  int
}

// NewPageRank returns bulk-synchronous PageRank with the given damping
// factor running a fixed number of power iterations (the standard
// accelerator-benchmark configuration).
func NewPageRank(damping float64, epochs int) BSPProgram {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if epochs <= 0 {
		epochs = 10
	}
	return pr{damping: damping, epochs: epochs}
}

func (pr) Name() string { return "pr" }
func (pr) Mode() Mode   { return BSP }

func (p pr) InitProp(v graph.VertexID, g *graph.CSR) Prop {
	return FromFloat(1.0 / float64(g.NumVertices()))
}

func (p pr) InitActive(g *graph.CSR) []graph.VertexID { return allVertices(g) }

func (pr) AccumInit() Prop { return FromFloat(0) }

func (pr) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	return FromFloat(cur.Float() + delta.Float())
}

func (p pr) Propagate(prop Prop, _ uint32, outDeg int64) (Prop, bool) {
	if outDeg == 0 {
		return 0, false
	}
	return FromFloat(prop.Float() / float64(outDeg)), true
}

func (p pr) Apply(v graph.VertexID, cur, accum Prop, g *graph.CSR) (Prop, bool) {
	n := float64(g.NumVertices())
	next := (1-p.damping)/n + p.damping*accum.Float()
	return FromFloat(next), true
}

// EpochActive keeps every vertex active each epoch: PageRank is
// topology-driven, so dangling-in-degree vertices must still propagate.
func (p pr) EpochActive(epoch int, g *graph.CSR) []graph.VertexID {
	if epoch >= p.epochs {
		return nil
	}
	return allVertices(g)
}

func (p pr) MaxEpochs() int { return p.epochs }

// Betweenness centrality (BC) runs as two level-synchronous BSP phases:
// a forward pass computing BFS depth and shortest-path counts (σ), and a
// backward pass over the transpose graph accumulating dependencies (δ).
// The paper notes BC's backward pass doubles the edges that must be stored;
// we run it on the explicit transpose.

const bcUnreached = 0xFFFF

// bcPack packs (depth, sigma) into a Prop: depth in the high 16 bits.
func bcPack(depth uint16, sigma uint64) Prop {
	return Prop(uint64(depth)<<48 | (sigma & ((1 << 48) - 1)))
}

func bcDepth(p Prop) uint16 { return uint16(p >> 48) }
func bcSigma(p Prop) uint64 { return uint64(p) & ((1 << 48) - 1) }

// bcForward is the σ-counting forward BSP phase.
type bcForward struct{ root graph.VertexID }

// NewBCForward returns the forward phase of Brandes-style betweenness
// centrality: a level-synchronous BFS that counts shortest paths.
func NewBCForward(root graph.VertexID) BSPProgram { return bcForward{root} }

func (bcForward) Name() string { return "bc-forward" }
func (bcForward) Mode() Mode   { return BSP }

func (b bcForward) InitProp(v graph.VertexID, g *graph.CSR) Prop {
	if v == b.root {
		return bcPack(0, 1)
	}
	return bcPack(bcUnreached, 0)
}

func (b bcForward) InitActive(g *graph.CSR) []graph.VertexID {
	return []graph.VertexID{b.root}
}

func (bcForward) AccumInit() Prop { return bcPack(bcUnreached, 0) }

func (bcForward) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	// Within one level-synchronous epoch every message carries the same
	// depth; accumulate σ. Keep the smaller depth if they ever differ.
	if bcDepth(cur) == bcUnreached {
		return delta
	}
	if bcDepth(delta) == bcDepth(cur) {
		return bcPack(bcDepth(cur), bcSigma(cur)+bcSigma(delta))
	}
	if bcDepth(delta) < bcDepth(cur) {
		return delta
	}
	return cur
}

func (bcForward) Propagate(prop Prop, _ uint32, _ int64) (Prop, bool) {
	return bcPack(bcDepth(prop)+1, bcSigma(prop)), true
}

func (bcForward) Apply(v graph.VertexID, cur, accum Prop, g *graph.CSR) (Prop, bool) {
	if bcDepth(cur) != bcUnreached {
		return cur, false // already settled at an earlier level
	}
	if bcDepth(accum) == bcUnreached {
		return cur, false
	}
	return accum, true
}

func (bcForward) MaxEpochs() int { return 0 }

// bcBackward accumulates dependencies level by level on the transpose
// graph. Properties hold δ(v) as float64 bits; depth and σ come from the
// forward pass (conceptually the same vertex record, held here as captured
// state so each phase's Prop stays 8 bytes).
type bcBackward struct {
	depth    []uint16
	sigma    []uint64
	maxDepth int
	byLevel  [][]graph.VertexID
}

// NewBCBackward builds the backward phase from forward-phase results.
// forwardProps must be the property vector produced by NewBCForward.
func NewBCBackward(forwardProps []Prop) ScheduledProgram {
	n := len(forwardProps)
	b := &bcBackward{
		depth: make([]uint16, n),
		sigma: make([]uint64, n),
	}
	maxDepth := 0
	for v, p := range forwardProps {
		b.depth[v] = bcDepth(p)
		b.sigma[v] = bcSigma(p)
		if b.depth[v] != bcUnreached && int(b.depth[v]) > maxDepth {
			maxDepth = int(b.depth[v])
		}
	}
	b.maxDepth = maxDepth
	b.byLevel = make([][]graph.VertexID, maxDepth+1)
	for v := 0; v < n; v++ {
		if d := b.depth[v]; d != bcUnreached {
			b.byLevel[d] = append(b.byLevel[d], graph.VertexID(v))
		}
	}
	return b
}

func (*bcBackward) Name() string { return "bc-backward" }
func (*bcBackward) Mode() Mode   { return BSP }

func (*bcBackward) InitProp(v graph.VertexID, g *graph.CSR) Prop { return FromFloat(0) }

// InitActive is empty: the level schedule drives activation.
func (*bcBackward) InitActive(g *graph.CSR) []graph.VertexID { return nil }

func (*bcBackward) AccumInit() Prop { return FromFloat(0) }

// bcMsgPack packs (senderDepth, contribution float32) into a Prop.
func bcMsgPack(depth uint16, contrib float32) Prop {
	return Prop(uint64(depth)<<32 | uint64(math.Float32bits(contrib)))
}

func bcMsgDepth(p Prop) uint16    { return uint16(p >> 32) }
func bcMsgContrib(p Prop) float32 { return math.Float32frombits(uint32(p)) }

// Reduce accepts contributions only from true BFS successors (vertices one
// level deeper); transpose edges from other levels are not DAG edges.
func (b *bcBackward) Reduce(v graph.VertexID, cur, delta Prop) Prop {
	if b.depth[v] == bcUnreached || bcMsgDepth(delta) != b.depth[v]+1 {
		return cur
	}
	return FromFloat(cur.Float() + float64(bcMsgContrib(delta)))
}

// Propagate sends (1+δ(w))/σ(w) tagged with w's depth. The engine calls it
// per transpose out-edge of an active vertex w; the δ in prop is w's
// current dependency.
func (b *bcBackward) Propagate(prop Prop, _ uint32, _ int64) (Prop, bool) {
	// The property vector is indexed per vertex by the engine, but
	// Propagate does not receive the vertex ID; encode depth and σ into
	// the property at activation time instead. See propForLevel.
	return prop, true
}

// Apply folds the accumulated Σ contributions into δ(v) = σ(v)·Σ.
func (b *bcBackward) Apply(v graph.VertexID, cur, accum Prop, g *graph.CSR) (Prop, bool) {
	if b.depth[v] == bcUnreached {
		return cur, false
	}
	return FromFloat(cur.Float() + float64(b.sigma[v])*accum.Float()), false
}

// EpochActive walks levels maxDepth, maxDepth-1, ..., 1.
func (b *bcBackward) EpochActive(epoch int, g *graph.CSR) []graph.VertexID {
	level := b.maxDepth - epoch
	if level < 1 {
		return nil
	}
	return b.byLevel[level]
}

func (b *bcBackward) MaxEpochs() int { return b.maxDepth }

// PreparePropagation is called by engines before propagating from an
// active vertex in a ScheduledProgram whose messages depend on the sender.
// For bcBackward it rewrites the outgoing property into the message form
// (senderDepth, (1+δ)/σ). Engines that see a PropPreparer must call it.
type PropPreparer interface {
	PrepareProp(v graph.VertexID, prop Prop) Prop
}

func (b *bcBackward) PrepareProp(v graph.VertexID, prop Prop) Prop {
	if b.sigma[v] == 0 {
		return bcMsgPack(b.depth[v], 0)
	}
	contrib := float32((1 + prop.Float()) / float64(b.sigma[v]))
	return bcMsgPack(b.depth[v], contrib)
}

// BCDepths decodes per-vertex depths from forward-phase properties.
func BCDepths(forwardProps []Prop) []uint16 {
	out := make([]uint16, len(forwardProps))
	for i, p := range forwardProps {
		out[i] = bcDepth(p)
	}
	return out
}

// BCSigmas decodes per-vertex shortest-path counts from forward-phase
// properties.
func BCSigmas(forwardProps []Prop) []uint64 {
	out := make([]uint64, len(forwardProps))
	for i, p := range forwardProps {
		out[i] = bcSigma(p)
	}
	return out
}

// RunBC executes both betweenness-centrality phases on the given runner:
// the forward phase on g, the backward phase on the transpose gT (built by
// the caller so it can be reused). It returns per-vertex dependency scores
// and the combined statistics of both phases.
func RunBC(r Runner, g, gT *graph.CSR, root graph.VertexID) ([]float64, RunStats, error) {
	fwdProps, fwdStats, err := r.RunProgram(NewBCForward(root), g)
	if err != nil {
		// Context-aware runners return partial stats alongside the error;
		// keep them so callers can salvage the work done before the stop.
		return nil, fwdStats, err
	}
	back := NewBCBackward(fwdProps)
	bwdProps, bwdStats, err := r.RunProgram(back, gT)
	if err != nil {
		return nil, RunStats{
			SimSeconds:        fwdStats.SimSeconds + bwdStats.SimSeconds,
			EdgesTraversed:    fwdStats.EdgesTraversed + bwdStats.EdgesTraversed,
			MessagesSent:      fwdStats.MessagesSent + bwdStats.MessagesSent,
			MessagesCoalesced: fwdStats.MessagesCoalesced + bwdStats.MessagesCoalesced,
			Epochs:            fwdStats.Epochs + bwdStats.Epochs,
		}, err
	}
	scores := make([]float64, len(bwdProps))
	for v, p := range bwdProps {
		if graph.VertexID(v) != root {
			scores[v] = p.Float()
		}
	}
	combined := RunStats{
		SimSeconds:        fwdStats.SimSeconds + bwdStats.SimSeconds,
		EdgesTraversed:    fwdStats.EdgesTraversed + bwdStats.EdgesTraversed,
		MessagesSent:      fwdStats.MessagesSent + bwdStats.MessagesSent,
		MessagesCoalesced: fwdStats.MessagesCoalesced + bwdStats.MessagesCoalesced,
		Epochs:            fwdStats.Epochs + bwdStats.Epochs,
	}
	return scores, combined, nil
}
