package program

import (
	"math"

	"nova/graph"
)

// SelfUpdating is implemented by asynchronous programs whose propagation
// step itself updates the vertex (delta-accumulative computation in the
// Maiter style). Engines call OnPropagate exactly when a vertex is pulled
// for propagation: it folds pending state into the property and returns
// the value messages should be derived from.
type SelfUpdating interface {
	// OnPropagate returns the post-propagation property and the outgoing
	// value. An outgoing zero Prop conventionally suppresses messages
	// via Propagate's ok=false.
	OnPropagate(v graph.VertexID, prop Prop) (newProp, outProp Prop)
}

// prDelta is asynchronous delta-based PageRank (PR-delta): each vertex
// keeps (rank, residual); incoming deltas accumulate into the residual,
// and propagation folds the residual into the rank while forwarding
// damping·residual/outdeg to the neighbors. Residuals below the tolerance
// are withheld, bounding both termination and error.
//
// Section V of the paper discusses this workload: its performance is very
// sensitive to traversal order, which is why the paper's evaluation runs
// PR in BSP mode instead. It is provided here as the asynchronous
// alternative (and as an ablation subject).
type prDelta struct {
	damping float64
	tol     float64
}

// NewPRDelta returns asynchronous delta-accumulative PageRank. tol is the
// residual threshold below which propagation is withheld (default 1e-4 of
// uniform mass when ≤0).
func NewPRDelta(damping, tol float64) Program {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if tol <= 0 {
		tol = 1e-4
	}
	return prDelta{damping: damping, tol: tol}
}

// prPack packs (rank, residual) as two float32s.
func prPack(rank, residual float32) Prop {
	return Prop(uint64(math.Float32bits(rank))<<32 | uint64(math.Float32bits(residual)))
}

func prRank(p Prop) float32     { return math.Float32frombits(uint32(p >> 32)) }
func prResidual(p Prop) float32 { return math.Float32frombits(uint32(p)) }

// PRDeltaRank decodes the converged rank of one vertex from a PR-delta
// property vector.
func PRDeltaRank(p Prop) float64 { return float64(prRank(p)) + float64(prResidual(p)) }

func (prDelta) Name() string { return "pr-delta" }
func (prDelta) Mode() Mode   { return Async }

func (d prDelta) InitProp(v graph.VertexID, g *graph.CSR) Prop {
	// rank 0, residual (1-damping)/N: the fixpoint of
	// rank = (1-d)/N + d·Σ in-contributions.
	return prPack(0, float32((1-d.damping)/float64(g.NumVertices())))
}

func (prDelta) InitActive(g *graph.CSR) []graph.VertexID { return allVertices(g) }

func (prDelta) Reduce(_ graph.VertexID, cur, delta Prop) Prop {
	r := prResidual(cur) + prResidual(delta)
	return prPack(prRank(cur), r)
}

// MergeDelta implements DeltaMerger by summing residuals. Reassociating
// float32 additions can change final bits relative to an uncoalesced run,
// but the merged run is itself fully deterministic, and the residual mass
// is conserved either way.
func (prDelta) MergeDelta(a, b Prop) Prop {
	return prPack(0, prResidual(a)+prResidual(b))
}

// OnPropagate folds the residual into the rank; residuals below tolerance
// stay pending (and the vertex reactivates when more mass arrives).
func (d prDelta) OnPropagate(v graph.VertexID, prop Prop) (Prop, Prop) {
	r := prResidual(prop)
	if float64(r) < d.tol*1 {
		return prop, prPack(0, 0) // withhold: nothing to send
	}
	return prPack(prRank(prop)+r, 0), prPack(0, r)
}

func (d prDelta) Propagate(out Prop, _ uint32, outDeg int64) (Prop, bool) {
	r := prResidual(out)
	if r == 0 || outDeg == 0 {
		return 0, false
	}
	return prPack(0, float32(d.damping)*r/float32(outDeg)), true
}
