package nova

import (
	"context"
	"fmt"

	"nova/graph"
	"nova/internal/extmem"
	"nova/internal/harness"
	"nova/internal/mem"
	"nova/internal/ref"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// ExternalMemory runs programs on the external-memory baseline: a
// PartitionedVC/GridGraph-style out-of-core framework that keeps vertex
// state in DRAM and streams interval edge partitions from SSD through a
// bounded partition cache. It implements program.Runner for asynchronous
// programs (bfs, sssp, cc, prdelta); bulk-synchronous programs are
// rejected — interval-at-a-time processing is the async trade-off the
// NOVA spill/recovery comparison is about.
type ExternalMemory struct {
	// RAMBytes is the DRAM partition-cache budget (default 256 MiB).
	RAMBytes int64
	// PartitionEdges is the target edges per vertex interval (default 1 Mi).
	PartitionEdges int64
	// SSDPreset picks the paging device: "nvme" (default) or "sata".
	SSDPreset string
	// MaxRounds bounds the outer loop (0 = default).
	MaxRounds int
}

// ExternalMemoryReport extends the engine-agnostic stats with the
// out-of-core cost breakdown.
type ExternalMemoryReport struct {
	Props []program.Prop
	Stats program.RunStats
	// Cycles is total modeled time at 2 GHz; ComputeCycles the DRAM
	// streaming share; IOStallCycles the SSD latency compute could not
	// hide behind the prefetch pipeline.
	Cycles        uint64
	ComputeCycles uint64
	IOStallCycles uint64
	// PartitionLoads, BytesPaged, Evictions and CacheHitRate instrument
	// the DRAM partition cache.
	PartitionLoads uint64
	BytesPaged     uint64
	Evictions      uint64
	CacheHitRate   float64
	// Partitions and Rounds describe the interval schedule.
	Partitions int
	Rounds     int
	// Dump is the full hierarchical statistics dump (per-partition loads
	// and footprints); the flat fields above are its root-level records.
	Dump *stats.Dump
	// Partial marks a salvaged report from a run that stopped early;
	// StopReason classifies why ("cancelled", "deadline", "budget").
	Partial    bool
	StopReason string
}

// GTEPS returns effective throughput against the graph's edge count.
func (r *ExternalMemoryReport) GTEPS(g *graph.CSR) float64 {
	if r.Stats.SimSeconds <= 0 {
		return 0
	}
	return float64(g.NumEdges()) / r.Stats.SimSeconds / 1e9
}

func (b *ExternalMemory) config() (extmem.Config, error) {
	cfg := extmem.DefaultConfig()
	if b.RAMBytes > 0 {
		cfg.RAMBytes = b.RAMBytes
	}
	if b.PartitionEdges > 0 {
		cfg.PartitionEdges = b.PartitionEdges
	}
	switch b.SSDPreset {
	case "", "nvme":
		cfg.SSD = mem.NVMeSSDConfig("ssd")
	case "sata":
		cfg.SSD = mem.SATASSDConfig("ssd")
	default:
		return cfg, fmt.Errorf("nova: unknown SSD preset %q", b.SSDPreset)
	}
	cfg.MaxRounds = b.MaxRounds
	return cfg, nil
}

// Run executes p on g under the external-memory model.
func (b *ExternalMemory) Run(p program.Program, g *graph.CSR) (*ExternalMemoryReport, error) {
	return b.RunContext(context.Background(), p, g)
}

// RunContext executes p on g, polling ctx cooperatively per round and per
// partition. On a cooperative stop it returns BOTH a partial report
// (Partial set, with its StopReason) and the error.
func (b *ExternalMemory) RunContext(ctx context.Context, p program.Program, g *graph.CSR) (*ExternalMemoryReport, error) {
	cfg, err := b.config()
	if err != nil {
		return nil, err
	}
	res, err := extmem.Run(ctx, cfg, g, p)
	if res == nil {
		return nil, err
	}
	return &ExternalMemoryReport{
		Props:          res.Props,
		Stats:          res.Stats,
		Cycles:         uint64(res.Ticks),
		ComputeCycles:  uint64(res.ComputeTicks),
		IOStallCycles:  uint64(res.IOStallTicks),
		PartitionLoads: res.PartitionLoads,
		BytesPaged:     res.BytesPaged,
		Evictions:      res.Evictions,
		CacheHitRate:   res.CacheHitRate,
		Partitions:     res.Partitions,
		Rounds:         res.Rounds,
		Dump:           res.Dump,
		Partial:        res.Partial,
		StopReason:     string(res.StopReason),
	}, err
}

// RunProgram implements program.Runner.
func (b *ExternalMemory) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := b.Run(p, g)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, nil
}

// RunProgramContext is RunProgram with cooperative cancellation; on a
// cooperative stop the partial props and stats come back alongside the
// error.
func (b *ExternalMemory) RunProgramContext(ctx context.Context, p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := b.RunContext(ctx, p, g)
	if rep == nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, err
}

var _ program.Runner = (*ExternalMemory)(nil)

// Engine returns the harness view of the external-memory baseline. Each
// RunWorkload call owns a private model, so the engine is safe for
// concurrent use by harness.Pool workers.
//
// The metrics bag is derived from the run's stats dump: root-level keys
// cycles, compute_cycles, io_stall_ticks, partition_loads, bytes_paged,
// cache_hit_rate, partitions, rounds, evictions plus per-partition detail
// (part0.loads, …). Workloads pr and bc are bulk-synchronous and rejected.
func (b *ExternalMemory) Engine() harness.Engine { return extmemEngine{b} }

type extmemEngine struct{ b *ExternalMemory }

func (e extmemEngine) Name() string { return "extmem" }

func (e extmemEngine) Fingerprint() string {
	cfg, err := e.b.config()
	if err != nil {
		return fmt.Sprintf("extmem{invalid ssd=%s}", e.b.SSDPreset)
	}
	return fmt.Sprintf("extmem{ram=%d part=%d ssd=%s qd=%d}",
		cfg.RAMBytes, cfg.PartitionEdges, orDefault(e.b.SSDPreset, "nvme"), cfg.SSD.QueueDepth)
}

func (e extmemEngine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	prIters := w.PRIters
	if prIters <= 0 {
		prIters = 10
	}
	switch w.Name {
	case "pr", "bc":
		return nil, fmt.Errorf("nova: workload %q is bulk-synchronous; the extmem engine runs asynchronous workloads only (bfs, sssp, cc, prdelta)", w.Name)
	}
	p, err := workloadProgram(w.Name, w.Root, prIters)
	if err != nil {
		return nil, err
	}
	out := &harness.Report{
		Engine:          e.Name(),
		Fingerprint:     e.Fingerprint(),
		Workload:        w.Name,
		Tier:            w.Tier,
		SequentialEdges: ref.SequentialEdges(w.G, w.Root, w.Name, prIters),
	}
	rep, err := e.b.RunContext(ctx, p, w.G)
	if rep == nil {
		if err != nil && sim.ReasonFor(err) == "" {
			return nil, err
		}
		return nil, err
	}
	out.Props, out.Stats = rep.Props, rep.Stats
	out.Dump = rep.Dump
	out.Metrics = rep.Dump.Bag()
	out.Partial, out.StopReason = rep.Partial, rep.StopReason
	return out, err
}

var _ harness.Engine = extmemEngine{}
